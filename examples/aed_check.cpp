// aed_check: the differential-fuzzing and invariant-checking harness CLI.
//
// Fuzz mode (default) sweeps a deterministic seed range, builds one
// synthesize→apply→simulate scenario per seed (src/check/scenario.hpp),
// checks the differential and metamorphic invariant catalog
// (src/check/invariants.hpp), delta-debugs any failure down to a minimal
// counterexample, and writes each one as a self-contained repro file:
//
//   aed_check [--seeds <count>] [--seed-start <n>] [--budget-s <seconds>]
//             [--invariants all|cheap|<name,...>] [--profile smoke|nightly]
//             [--expensive-every <n>] [--inject "<kind> [key=value]..."]
//             [--no-shrink] [--max-shrink-attempts <n>]
//             [--out-dir <dir>] [--json <file>|-] [--quiet]
//
// Replay mode re-runs repro files (shrinker output, or the checked-in
// regression corpus under tests/corpus/):
//
//   aed_check --repro <file> [--repro <file>]... [--invariants <names>]
//
// Knobs:
//   --budget-s          stop starting new seeds after this much wall clock
//   --expensive-every   run the two second-solve invariants
//                       (incremental-equiv, resynth-noop) on every Nth seed
//                       only (default 4; 0 = never)
//   --inject            poison every scenario with a deterministic fault
//                       (repro `fault` grammar, e.g. "stage-commit" or
//                       "reject-validation rounds=2") — used to prove the
//                       harness detects, shrinks, and replays real failures
//   --json              write the machine-readable sweep report (CI artifact)
//   --out-dir           where minimized repro files land (default ".")
//   --export-seed <n>   write the generated scenario for seed n as
//                       seed<n>.repro in --out-dir (no checking) and exit —
//                       how corpus entries under tests/corpus/ are made
//
// The environment variable AED_TEST_SEED, when set and --seed-start is not
// given, overrides the base seed; the effective base seed is always printed
// so any CI log line is enough to reproduce a run.
//
// Exit codes: 0 clean sweep / all repros pass, 1 usage error, 2 internal
// error, 4 invariant violations found (repro files written).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "check/fuzz.hpp"
#include "check/repro.hpp"
#include "obs/export.hpp"
#include "util/error.hpp"

namespace {

using namespace aed;
using namespace aed::check;

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw AedError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Exports the metrics registry when AED_METRICS_OUT is set; called on
/// every exit path of the sweep so CI always gets its snapshot artifact.
void exportMetricsIfRequested() {
  const char* env = std::getenv("AED_METRICS_OUT");
  if (env == nullptr || *env == '\0') return;
  if (!aed::exportMetricsFile(env)) {
    std::cerr << "error: cannot write metrics file: " << env << "\n";
  }
}

int usage() {
  std::cerr
      << "usage: aed_check [--seeds <count>] [--seed-start <n>]\n"
         "                 [--budget-s <seconds>] [--profile smoke|nightly]\n"
         "                 [--invariants all|cheap|<name,...>]\n"
         "                 [--expensive-every <n>]\n"
         "                 [--inject \"<kind> [key=value]...\"]\n"
         "                 [--no-shrink] [--max-shrink-attempts <n>]\n"
         "                 [--out-dir <dir>] [--json <file>|-] [--quiet]\n"
         "                 [--export-seed <n>]\n"
         "       aed_check --repro <file> [--repro <file>]...\n"
         "                 [--invariants <name,...>]\n";
  return 1;
}

std::uint64_t parseU64(const std::string& value, const std::string& flag) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw AedError("invalid " + flag + " value: " + value);
  }
  return std::stoull(value);
}

void printFailures(const std::string& where,
                   const std::vector<InvariantFailure>& failures) {
  for (const InvariantFailure& failure : failures) {
    std::cerr << "FAIL " << where << ": " << invariantName(failure.invariant)
              << " (" << failure.category << "): " << failure.detail << "\n";
  }
}

/// Replays repro files; the invariant selection comes from each file unless
/// overridden on the command line.
int replay(const std::vector<std::string>& files,
           std::optional<InvariantMask> override, bool quiet) {
  bool anyFailure = false;
  for (const std::string& file : files) {
    const Repro repro = parseRepro(readFile(file));
    const InvariantMask selected = override.value_or(repro.invariants);
    const CheckOutcome outcome = checkScenario(repro.scenario, selected);
    if (!quiet) {
      std::cout << file << ": " << repro.scenario.label << " — "
                << (outcome.passed() ? "pass" : "FAIL") << " ("
                << invariantMaskToString(outcome.checked) << " checked"
                << (outcome.note.empty() ? "" : ", " + outcome.note) << ")\n";
    }
    printFailures(file, outcome.failures);
    anyFailure |= !outcome.passed();
  }
  return anyFailure ? 4 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Export the metrics snapshot on every exit path (including exceptions)
  // when AED_METRICS_OUT is set.
  struct MetricsAtExit {
    ~MetricsAtExit() { exportMetricsIfRequested(); }
  } metricsAtExit;
  FuzzOptions options;
  options.seedCount = 500;
  std::optional<InvariantMask> invariantsFlag;
  std::vector<std::string> reproFiles;
  std::string outDir = ".";
  std::string jsonPath;
  std::optional<std::uint64_t> exportSeed;
  bool quiet = false;
  bool seedStartGiven = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw AedError("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--seeds") options.seedCount = parseU64(value(), arg);
      else if (arg == "--seed-start") {
        options.seedStart = parseU64(value(), arg);
        seedStartGiven = true;
      }
      else if (arg == "--budget-s") {
        options.budgetSeconds = static_cast<double>(parseU64(value(), arg));
      }
      else if (arg == "--invariants") {
        invariantsFlag = invariantMaskFromString(value());
      }
      else if (arg == "--profile") {
        const std::string v = value();
        if (v == "smoke") options.profile = ScenarioProfile::smoke();
        else if (v == "nightly") options.profile = ScenarioProfile::nightly();
        else throw AedError("unknown --profile (smoke|nightly): " + v);
      }
      else if (arg == "--expensive-every") {
        options.expensiveEvery = parseU64(value(), arg);
      }
      else if (arg == "--inject") options.inject = parseFaultSpec(value());
      else if (arg == "--no-shrink") options.shrink = false;
      else if (arg == "--max-shrink-attempts") {
        options.shrinkOptions.maxAttempts =
            static_cast<std::size_t>(parseU64(value(), arg));
      }
      else if (arg == "--out-dir") outDir = value();
      else if (arg == "--export-seed") exportSeed = parseU64(value(), arg);
      else if (arg == "--json") jsonPath = value();
      else if (arg == "--quiet") quiet = true;
      else if (arg == "--repro") reproFiles.push_back(value());
      else return usage();
    } catch (const AedError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    if (!reproFiles.empty()) {
      return replay(reproFiles, invariantsFlag, quiet);
    }

    if (invariantsFlag.has_value()) options.invariants = *invariantsFlag;
    if (exportSeed.has_value()) {
      const Scenario scenario = makeScenario(*exportSeed, options.profile);
      const std::string path =
          outDir + "/seed" + std::to_string(*exportSeed) + ".repro";
      std::ofstream out(path);
      if (!out) throw AedError("cannot write repro file: " + path);
      out << writeRepro(scenario,
                        invariantsFlag.value_or(kCheapInvariants));
      std::cout << scenario.label << " written to " << path << "\n";
      return 0;
    }
    if (!seedStartGiven) {
      if (const char* env = std::getenv("AED_TEST_SEED");
          env != nullptr && *env != '\0') {
        options.seedStart = parseU64(env, "AED_TEST_SEED");
      }
    }
    if (!quiet) {
      options.onEvent = [](std::uint64_t seed, const std::string& message) {
        std::cerr << "seed " << seed << ": " << message << "\n";
      };
    }

    std::cout << "aed_check: seeds " << options.seedStart << ".."
              << options.seedStart + options.seedCount - 1 << " (base seed "
              << options.seedStart << "), invariants "
              << invariantMaskToString(options.invariants)
              << ", expensive-every " << options.expensiveEvery << "\n";

    const FuzzReport report = [&] {
      FuzzReport r = runFuzz(options);
      // Write each minimized counterexample next to the report before the
      // JSON is rendered, so the artifact records where the repros landed.
      // Each repro gets its flight dump beside it: the recorder's view of
      // the failing scenario (spans, log tail, metrics at failure time).
      for (FuzzFailure& failure : r.failures) {
        const std::string stem = "crash-seed" + std::to_string(failure.seed) +
                                 "-" +
                                 invariantName(failure.failure.invariant);
        const std::string path = outDir + "/" + stem + ".repro";
        std::ofstream out(path);
        if (!out) throw AedError("cannot write repro file: " + path);
        out << failure.repro;
        failure.reproFile = path;
        if (!failure.flightDump.empty()) {
          const std::string dumpPath = outDir + "/" + stem + ".flight.json";
          std::ofstream dump(dumpPath);
          if (dump) {
            dump << failure.flightDump;
            failure.flightDumpFile = dumpPath;
          } else {
            std::cerr << "error: cannot write flight dump: " << dumpPath
                      << "\n";
          }
        }
      }
      return r;
    }();

    std::cout << "checked " << report.seedsRun << " scenarios ("
              << report.invariantChecks << " invariant checks, "
              << report.skippedChecks << " skipped, " << report.synthesized
              << " synthesized, " << report.unsatScenarios << " unsat) in "
              << report.seconds << "s"
              << (report.budgetExhausted ? " [budget exhausted]" : "") << "\n";
    if (!quiet) {
      for (const auto& [name, count] : report.checksByInvariant) {
        std::cout << "  " << name << ": " << count << "\n";
      }
    }
    for (const FuzzFailure& failure : report.failures) {
      std::cerr << "FAIL seed " << failure.seed << ": "
                << invariantName(failure.failure.invariant) << " ("
                << failure.failure.category << "): " << failure.failure.detail
                << "\n  minimized to " << failure.shrinkStats.routersAfter
                << " routers / " << failure.shrinkStats.policiesAfter
                << " policies — repro: " << failure.reproFile
                << (failure.flightDumpFile.empty()
                        ? ""
                        : ", flight dump: " + failure.flightDumpFile)
                << "\n";
    }

    if (!jsonPath.empty()) {
      if (jsonPath == "-") {
        std::cout << report.toJson();
      } else {
        std::ofstream out(jsonPath);
        if (!out) throw AedError("cannot write file: " + jsonPath);
        out << report.toJson();
        std::cout << "report written to " << jsonPath << "\n";
      }
    }
    return report.clean() ? 0 : 4;
  } catch (const AedError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
