// Quickstart: repair a policy violation on the paper's Figure 1 network.
//
// The network: four BGP routers. B filters routes from A (deny 1.0.0.0/16,
// local-preference 20 otherwise) and drops packets sourced from 3.0.0.0/16
// arriving from D. Three policies must hold:
//
//   P1  blocking      3.0.0.0/16 -> 1.0.0.0/16   (already holds)
//   P2  waypoint      2.0.0.0/16 -> 1.0.0.0/16 via C (already holds)
//   P3  reachability  3.0.0.0/16 -> 2.0.0.0/16   (violated!)
//
// AED computes the minimal update that implements P3 without regressing P1
// or P2 — a single class-specific permit rule prepended to B's packet
// filter.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "conftree/diff.hpp"
#include "conftree/parser.hpp"
#include "conftree/printer.hpp"
#include "core/aed.hpp"
#include "simulate/simulator.hpp"

namespace {

constexpr const char* kConfigs = R"(hostname A
interface hosts
 ip address 1.0.0.1/16
interface toB
 ip address 10.0.1.1/30
interface toC
 ip address 10.0.3.1/30
router bgp 65001
 neighbor 10.0.1.2 remote-router B
 neighbor 10.0.3.2 remote-router C
 network 1.0.0.0/16
!
hostname B
interface hosts
 ip address 2.0.0.1/16
interface toA
 ip address 10.0.1.2/30
interface toC
 ip address 10.0.2.1/30
interface toD
 ip address 10.0.4.1/30
 packet-filter-in pf_b
router bgp 65002
 neighbor 10.0.1.1 remote-router A filter-in rf_a
 neighbor 10.0.2.2 remote-router C
 neighbor 10.0.4.2 remote-router D
 network 2.0.0.0/16
 route-filter rf_a seq 10 deny 1.0.0.0/16
 route-filter rf_a seq 20 permit any set local-preference 20
packet-filter pf_b seq 10 deny 3.0.0.0/16 any
packet-filter pf_b seq 20 permit any any
!
hostname C
interface hosts
 ip address 4.0.0.1/16
interface toA
 ip address 10.0.3.2/30
interface toB
 ip address 10.0.2.2/30
router bgp 65003
 neighbor 10.0.3.1 remote-router A
 neighbor 10.0.2.1 remote-router B
 network 4.0.0.0/16
!
hostname D
interface hosts
 ip address 3.0.0.1/16
interface toB
 ip address 10.0.4.2/30
router bgp 65004
 neighbor 10.0.4.1 remote-router B
 network 3.0.0.0/16
)";

aed::TrafficClass cls(const char* src, const char* dst) {
  return {*aed::Ipv4Prefix::parse(src), *aed::Ipv4Prefix::parse(dst)};
}

}  // namespace

int main() {
  using namespace aed;

  // 1. Parse the current configurations.
  ConfigTree tree = parseNetworkConfig(kConfigs);

  // 2. State the full post-update policy set (existing + new).
  const PolicySet policies = {
      Policy::blocking(cls("3.0.0.0/16", "1.0.0.0/16")),           // P1
      Policy::waypoint(cls("2.0.0.0/16", "1.0.0.0/16"), {"C"}),    // P2
      Policy::reachability(cls("3.0.0.0/16", "2.0.0.0/16")),       // P3
  };
  Simulator before(tree);
  std::cout << "Policies violated before the update: "
            << before.violations(policies).size() << "\n\n";

  // 3. Synthesize the update (no objectives: AED defaults to minimal churn).
  const AedResult result = synthesize(tree, policies);
  if (!result.success) {
    std::cerr << "synthesis failed: " << result.error << "\n";
    return 1;
  }

  // 4. Inspect the patch — the syntax-tree additions/removals.
  std::cout << "Synthesized update (" << result.patch.size() << " edits, "
            << result.stats.totalSeconds << "s):\n"
            << result.patch.describe() << "\n";

  // 5. Verify with the independent control-plane simulator and show churn.
  Simulator after(result.updated);
  std::cout << "Policies violated after the update:  "
            << after.violations(policies).size() << "\n";
  const DiffStats diff = diffNetworks(tree, result.updated);
  std::cout << "Devices changed: " << diff.devicesChanged << "/"
            << diff.totalDevices << ", lines changed: " << diff.linesChanged()
            << "\n\n";

  // 6. Print router B's updated configuration.
  std::cout << "Updated configuration of router B:\n"
            << printRouterConfig(*result.updated.router("B"));
  return 0;
}
