// Datacenter update: the same policy change under different management
// objectives.
//
// A leaf-spine fabric with role-templated rack filters (every rack carries
// an identical pf_rack packet filter — the "configuration template" of §3.1)
// blocks a set of quarantined source subnets. The operator wants to
// re-enable two blocked (source, destination) pairs. The *right* update
// depends on the organization's management objectives:
//
//   * min-devices:        touch as few routers as possible — AED edits only
//                         the destination racks, breaking the template;
//   * preserve-templates: keep every rack's filter identical — AED applies
//                         the same permit rules to every clone;
//   * avoid router rack0: never touch a box with known hardware issues.
//
// Build & run:  ./build/examples/datacenter_update

#include <iostream>

#include "conftree/diff.hpp"
#include "core/aed.hpp"
#include "gen/netgen.hpp"
#include "gen/policygen.hpp"
#include "simulate/simulator.hpp"

int main() {
  using namespace aed;

  // A 4-rack / 2-agg / 2-spine fabric; half the rack subnets quarantined.
  DcParams params;
  params.racks = 4;
  params.aggs = 2;
  params.spines = 2;
  params.blockedPairFraction = 0.5;
  params.seed = 5;
  const GeneratedNetwork net = generateDatacenter(params);

  // The update task: un-block two currently-blocked pairs, keep the rest.
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 2, 42);
  PolicySet all = update.base;
  all.insert(all.end(), update.added.begin(), update.added.end());
  std::cout << "Network: " << net.tree.routers().size() << " routers, "
            << update.base.size() << " base policies, "
            << update.added.size() << " added policies:\n";
  for (const Policy& policy : update.added) {
    std::cout << "  + " << policy.str() << "\n";
  }
  std::cout << "\n";

  const TemplateGroups templates = computeTemplateGroups(net.tree);

  struct Scenario {
    const char* name;
    std::vector<Objective> objectives;
  };
  const Scenario scenarios[] = {
      {"min-devices", objectivesMinDevices()},
      {"preserve-templates", objectivesPreserveTemplates()},
      {"avoid-rack0", objectivesAvoidRouters({"rack0"})},
  };

  for (const Scenario& scenario : scenarios) {
    const AedResult result = synthesize(net.tree, all, scenario.objectives);
    if (!result.success) {
      std::cerr << scenario.name << ": FAILED: " << result.error << "\n";
      continue;
    }
    Simulator sim(result.updated);
    const DiffStats diff = diffNetworks(net.tree, result.updated);
    std::cout << scenario.name << ":\n"
              << "  policies violated after update: "
              << sim.violations(all).size() << "\n"
              << "  devices changed: " << diff.devicesChanged << "/"
              << diff.totalDevices << "  lines changed: "
              << diff.linesChanged() << "\n"
              << "  template violations: "
              << countTemplateViolations(templates, result.updated) << "/"
              << templates.groups.size() << "\n"
              << "  objectives satisfied/violated: "
              << result.satisfiedObjectives.size() << "/"
              << result.violatedObjectives.size() << "\n"
              << "  solve time: " << result.stats.totalSeconds << "s\n"
              << "  patch:\n";
    for (const Edit& edit : result.patch.edits()) {
      std::cout << "    " << edit.describe() << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
