// Resilience layer overhead and behavior under pressure.
//
// Three questions a production deployment cares about:
//   1. overhead — what does threading a deadline through every subproblem
//      cost when the budget is generous and never binds? (Should be noise.)
//   2. degradation quality — when the budget is tight, how much of the
//      policy set still gets a patch, and how much churn does the anytime
//      ladder's hard-only rung add over the MaxSMT optimum?
//   3. fault isolation — with one poisoned destination, how much of the
//      remaining work survives?
//
// Counters: degradedSubproblems / failedSubproblems straight from AedStats,
// survivorPct = usable subproblems / total.
//
// Run: ./build/bench/bench_resilience

#include "common.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

void overheadCase(benchmark::State& state, int routers,
                  std::uint64_t budgetMs) {
  const GeneratedNetwork net = generateDatacenter(dcPreset(routers, 29));
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 4, 311, 24);
  const PolicySet all = concat(update);

  for (auto _ : state) {
    AedOptions options;
    options.timeBudgetMs = budgetMs;  // 0 = deadline machinery disabled
    const AedResult r = synthesize(net.tree, all, {}, options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    requireCorrect(r.updated, all, state);
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    state.counters["degradedSubproblems"] =
        static_cast<double>(r.stats.degradedSubproblems);
    state.counters["failedSubproblems"] =
        static_cast<double>(r.stats.failedSubproblems);
  }
}

void faultIsolationCase(benchmark::State& state, int routers) {
  const GeneratedNetwork net = generateDatacenter(dcPreset(routers, 29));
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 4, 311, 24);
  const PolicySet all = concat(update);

  for (auto _ : state) {
    AedOptions options;
    options.faultInjection.kind = FaultInjection::Kind::kThrow;
    options.faultInjection.subproblem = 0;
    const AedResult r = synthesize(net.tree, all, {}, options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    std::size_t usable = 0;
    for (const SubproblemReport& report : r.subproblems) {
      if (report.outcome == SubOutcome::kOk ||
          report.outcome == SubOutcome::kDegraded) {
        ++usable;
      }
    }
    state.counters["subproblems"] = static_cast<double>(r.subproblems.size());
    state.counters["survivorPct"] =
        r.subproblems.empty()
            ? 0.0
            : 100.0 * static_cast<double>(usable) /
                  static_cast<double>(r.subproblems.size());
    state.counters["toolSeconds"] = r.stats.totalSeconds;
  }
}

void registerCases() {
  std::vector<int> sizes = {4, 8};
  if (aedbench::fullScale()) sizes = {4, 8, 12, 16};
  for (int routers : sizes) {
    const std::string base = "Resilience/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(
        (base + "/noBudget").c_str(),
        [routers](benchmark::State& state) { overheadCase(state, routers, 0); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (base + "/budget60s").c_str(),
        [routers](benchmark::State& state) {
          overheadCase(state, routers, 60000);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (base + "/oneDestinationPoisoned").c_str(),
        [routers](benchmark::State& state) {
          faultIsolationCase(state, routers);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
