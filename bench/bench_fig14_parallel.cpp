// Figure 14: "Impact of parallel solvers" (§8 optimization 2).
//
//  14a: speedup of solving one MaxSMT problem per destination (in parallel)
//       over one monolithic problem. Paper: 10-300x under min-devices.
//  14b: the optimality cost — per-destination solving can touch extra
//       devices vs the global optimum. Paper: at most one network gained 2
//       devices.
//
// This host is single-core, so two speedups are reported:
//   speedupCriticalPath = monolithic seconds / max subproblem seconds
//       (what a machine with >= #subproblems cores would observe), and
//   speedupWork = monolithic seconds / sum of subproblem seconds
//       (the decomposition benefit alone, visible even single-core).
//
// Run: ./build/bench/bench_fig14_parallel

#include "common.hpp"
#include "conftree/diff.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

void parallelCase(benchmark::State& state, int routers) {
  const GeneratedNetwork net = generateDatacenter(dcPreset(routers, 13));
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 4, 213, 24);
  const PolicySet all = concat(update);

  for (auto _ : state) {
    AedOptions mono;
    mono.perDestination = false;
    const AedResult single =
        synthesize(net.tree, all, objectivesMinDevices(), mono);
    if (!single.success) return state.SkipWithError(single.error.c_str());

    const AedResult parallel =
        synthesize(net.tree, all, objectivesMinDevices());
    if (!parallel.success) {
      return state.SkipWithError(parallel.error.c_str());
    }
    requireCorrect(single.updated, all, state);
    requireCorrect(parallel.updated, all, state);

    const double singleSeconds = single.stats.totalSeconds;
    state.counters["monolithicSeconds"] = singleSeconds;
    state.counters["criticalPathSeconds"] =
        parallel.stats.maxSubproblemSeconds;
    state.counters["speedupCriticalPath"] =
        singleSeconds / parallel.stats.maxSubproblemSeconds;
    state.counters["speedupWork"] =
        singleSeconds / parallel.stats.sumSubproblemSeconds;
    state.counters["subproblems"] =
        static_cast<double>(parallel.stats.subproblems);

    // 14b: optimality loss in devices changed.
    const int devSingle =
        diffNetworks(net.tree, single.updated).devicesChanged;
    const int devParallel =
        diffNetworks(net.tree, parallel.updated).devicesChanged;
    state.counters["devicesMonolithic"] = devSingle;
    state.counters["devicesParallel"] = devParallel;
    state.counters["extraDevices"] = devParallel - devSingle;
  }
}

void registerCases() {
  std::vector<int> sizes = {4, 8, 12};
  if (aedbench::fullScale()) sizes = {4, 8, 12, 16, 20};
  for (int routers : sizes) {
    const std::string name = "Fig14/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [routers](benchmark::State& state) {
                                   parallelCase(state, routers);
                                 })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
