// Figure 13: "Impact of policy class".
//
// The paper adds 5% new policies of one class — reachability, waypointing,
// or path-preference — to each datacenter network and measures update time.
// Shape: path-preference is the slowest at larger sizes (its encoding needs
// an extra link-failure environment plus path-pinning constraints), but all
// classes remain tractable.
//
// Run: ./build/bench/bench_fig13_policyclass

#include <algorithm>

#include "common.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

void classCase(benchmark::State& state, int routers,
               const std::string& policyClass) {
  DcParams params = dcPreset(routers, 9);
  // Waypoint/path-preference additions are generated from current paths;
  // they need reachable pairs, not blocked ones.
  if (policyClass != "reachability") params.blockedPairFraction = 0.0;
  const GeneratedNetwork net = generateDatacenter(params);
  Simulator sim(net.tree);
  const PolicySet base = sim.inferReachabilityPolicies();
  const int addCount =
      std::max(1, static_cast<int>(base.size()) / 20);  // ~5% new policies

  PolicySet all = base;
  PolicySet added;
  if (policyClass == "reachability") {
    const PolicyUpdate update =
        makeReachabilityUpdate(net.tree, addCount, 113);
    all = concat(update);
    added = update.added;
  } else if (policyClass == "waypoint") {
    added = makeWaypointPolicies(net.tree, addCount, 113);
    all.insert(all.end(), added.begin(), added.end());
  } else {
    added = makePathPreferencePolicies(net.tree, addCount, 113);
    all.insert(all.end(), added.begin(), added.end());
  }
  if (added.empty()) return state.SkipWithError("no policies generated");

  for (auto _ : state) {
    AedResult r = synthesize(net.tree, all, objectivesMinDevices());
    if (!r.success) return state.SkipWithError(r.error.c_str());
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    state.counters["criticalPathSeconds"] = r.stats.maxSubproblemSeconds;
    state.counters["addedPolicies"] = static_cast<double>(added.size());
    requireCorrect(r.updated, all, state);
  }
}

void registerCases() {
  std::vector<int> sizes = {4, 8, 16};
  if (aedbench::fullScale()) sizes = {4, 8, 12, 16, 20, 24};
  for (int routers : sizes) {
    for (const std::string& cls :
         {std::string("reachability"), std::string("waypoint"),
          std::string("path-preference")}) {
      const std::string name =
          "Fig13/dc" + std::to_string(routers) + "/" + cls;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [routers, cls](benchmark::State& state) {
                                     classCase(state, routers, cls);
                                   })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
