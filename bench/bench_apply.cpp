// Deployment subsystem benchmarks: transactional apply, staged rollout
// planning, and the chaos-hardened commit loop.
//
// Three questions, per network size:
//   1. What does the inverse-edit journal cost per edit (apply + commit),
//      and what does a full rollback cost (apply + rollback)? Both must be
//      cheap relative to a single simulation check.
//   2. How expensive is planning a staged rollout — the greedy ordering
//      simulates one intermediate state per candidate, so the memoized
//      engine's cache behavior dominates.
//   3. What does executing the plan cost, clean and under an injected
//      mid-apply fault (the fault path measures stage rollback, which CI's
//      sanitizer job also runs as a chaos smoke test)?
//
// Counters:
//   edits           — edits in the synthetic multi-router patch
//   stages          — stages the planner produced
//   candidates      — intermediate states simulated while planning
//   reorderings     — greedy picks that skipped an unsafe unit
//   committedStages — stages committed before the injected fault aborted
//
// Run: ./build/bench/bench_apply
//   (JSON for CI trend tracking: --benchmark_out=BENCH_apply.json
//    --benchmark_out_format=json)

#include "apply/deploy.hpp"
#include "apply/plan.hpp"
#include "common.hpp"
#include "conftree/journal.hpp"
#include "conftree/printer.hpp"
#include "simulate/engine.hpp"

namespace {

using namespace aed;

struct Scenario {
  GeneratedNetwork net;
  PolicySet policies;
  Patch patch;
};

// A benign multi-router patch: a fresh documentation-prefix packet filter
// (filter + one rule) on every rack router, so every stage is independent
// and transient-safe — planning cost is isolated from fallback handling.
Scenario applyScenario(int routers) {
  Scenario scenario{generateDatacenter(aedbench::dcPreset(routers, 37)),
                    {},
                    {}};
  SimulationEngine engine(scenario.net.tree);
  scenario.policies = engine.inferReachabilityPolicies();
  int index = 0;
  for (const auto& [name, role] : scenario.net.roles) {
    if (role != "rack") continue;
    const std::string path = "Router[name=" + name + "]";
    const std::string filter = "pfx_bench";
    scenario.patch.add(Edit{Edit::Op::kAddNode, path, NodeKind::kPacketFilter,
                            {{"name", filter}}});
    scenario.patch.add(
        Edit{Edit::Op::kAddNode, path + "/PacketFilter[name=" + filter + "]",
             NodeKind::kPacketFilterRule,
             {{"seq", "10"},
              {"action", "permit"},
              {"srcPrefix", "203.0.113.0/24"},
              {"dstPrefix", "198.51." + std::to_string(100 + index) + ".0/24"}}});
    ++index;
  }
  return scenario;
}

void transactionalApplyCase(benchmark::State& state, int routers,
                            bool rollback) {
  const Scenario scenario = applyScenario(routers);
  ConfigTree tree = scenario.net.tree.clone();
  const std::string before = printNetworkConfig(tree);
  for (auto _ : state) {
    ApplyJournal journal;
    scenario.patch.applyJournaled(tree, journal);
    if (rollback) {
      journal.rollback();
    } else {
      journal.commit();
      state.PauseTiming();
      tree = scenario.net.tree.clone();  // reset for the next iteration
      state.ResumeTiming();
    }
  }
  if (rollback && printNetworkConfig(tree) != before) {
    state.SkipWithError("rollback did not restore the tree");
  }
  state.counters["edits"] = static_cast<double>(scenario.patch.size());
}

void planCase(benchmark::State& state, int routers) {
  const Scenario scenario = applyScenario(routers);
  DeploymentPlan last;
  for (auto _ : state) {
    last = planStagedRollout(scenario.net.tree, scenario.patch,
                             scenario.policies);
  }
  if (last.empty() || last.oneShot) {
    state.SkipWithError("expected a multi-stage plan");
  }
  state.counters["stages"] = static_cast<double>(last.stages.size());
  state.counters["candidates"] = static_cast<double>(last.candidatesTried);
  state.counters["reorderings"] = static_cast<double>(last.reorderings);
  state.counters["edits"] = static_cast<double>(scenario.patch.size());
}

void executeCase(benchmark::State& state, int routers, bool injectFault) {
  const Scenario scenario = applyScenario(routers);
  const DeploymentPlan plan = planStagedRollout(
      scenario.net.tree, scenario.patch, scenario.policies);
  DeployFaultInjection fault;
  if (injectFault) {
    fault.kind = DeployFaultInjection::Kind::kStageCommitFailure;
    fault.stage = plan.stages.size() / 2;
    fault.atEdit = 0;
  }
  DeploymentPlan executed;
  for (auto _ : state) {
    state.PauseTiming();
    ConfigTree tree = scenario.net.tree.clone();
    executed = plan;
    state.ResumeTiming();
    const bool ok = executeDeployment(tree, executed, {}, fault);
    if (ok == injectFault) {
      state.SkipWithError("unexpected deployment outcome");
      break;
    }
    if (injectFault) {
      // The chaos contract: bit-identical to the last committed state.
      state.PauseTiming();
      ConfigTree expected = scenario.net.tree.clone();
      for (std::size_t i = 0; i < fault.stage; ++i) {
        executed.stages[i].patch.apply(expected);
      }
      if (printNetworkConfig(tree) != printNetworkConfig(expected)) {
        state.SkipWithError("fault did not roll back to a consistent state");
      }
      state.ResumeTiming();
    }
  }
  state.counters["stages"] = static_cast<double>(executed.stages.size());
  state.counters["committedStages"] =
      static_cast<double>(executed.committedStages);
}

void registerCases() {
  std::vector<int> sizes = {8, 16};
  if (aedbench::fullScale()) sizes = {8, 16, 24};
  for (int routers : sizes) {
    const std::string base = "Apply/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(
        (base + "/journalCommit").c_str(),
        [routers](benchmark::State& state) {
          transactionalApplyCase(state, routers, false);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (base + "/journalRollback").c_str(),
        [routers](benchmark::State& state) {
          transactionalApplyCase(state, routers, true);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (base + "/plan").c_str(),
        [routers](benchmark::State& state) { planCase(state, routers); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        (base + "/execute").c_str(),
        [routers](benchmark::State& state) {
          executeCase(state, routers, false);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        (base + "/executeChaos").c_str(),
        [routers](benchmark::State& state) {
          executeCase(state, routers, true);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const aedbench::TraceArtifact trace;  // AED_TRACE_OUT=<file> to record
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
