// Figure 12 (and the base-policy sweep of §9.2): "Impact of no. of
// policies".
//
// The paper fixes a 70-router topology-zoo network and shows AED scaling
// linearly both in the number of *base* policies (already configured) and
// in the number of *added* policies, for base sets of 64/128/256. (For
// contrast, NetComplete needed 30+ hours for just 64 base policies.)
//
// Default scale uses a 32-router network with base sets 16/32/64; set
// AED_BENCH_FULL=1 for the paper's 70-router, 64/128/256 setup.
//
// Run: ./build/bench/bench_fig12_policyscale

#include "common.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::requireCorrect;

void scaleCase(benchmark::State& state, int routers, int base, int added) {
  ZooParams params;
  params.routers = routers;
  params.seed = 5;
  params.blockedPairFraction = 0.3;  // enough blocked pairs to flip
  const GeneratedNetwork net = generateZoo(params);
  const PolicyUpdate update =
      makeReachabilityUpdate(net.tree, added, 300 + base, base);
  const PolicySet all = concat(update);
  for (auto _ : state) {
    AedResult r = synthesize(net.tree, all, objectivesMinDevices());
    if (!r.success) return state.SkipWithError(r.error.c_str());
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    state.counters["criticalPathSeconds"] = r.stats.maxSubproblemSeconds;
    state.counters["basePolicies"] = static_cast<double>(update.base.size());
    state.counters["addedPolicies"] =
        static_cast<double>(update.added.size());
    requireCorrect(r.updated, all, state);
  }
}

void registerCases() {
  const bool full = aedbench::fullScale();
  const int routers = full ? 70 : 24;
  const std::vector<int> bases = full ? std::vector<int>{64, 128, 256}
                                      : std::vector<int>{4, 8, 16};
  const std::vector<int> addeds = full ? std::vector<int>{2, 4, 8, 16}
                                       : std::vector<int>{2, 4, 8};

  // Sweep 1 (base scaling): added fixed at the largest default.
  for (int base : bases) {
    const std::string name = "Fig12/base" + std::to_string(base) + "_added" +
                             std::to_string(addeds.back());
    benchmark::RegisterBenchmark(
        name.c_str(),
        [routers, base, added = addeds.back()](benchmark::State& state) {
          scaleCase(state, routers, base, added);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  // Sweep 2 (added scaling): for each base size, vary the added count.
  for (int base : bases) {
    for (int added : addeds) {
      if (added == addeds.back()) continue;  // covered by sweep 1
      const std::string name = "Fig12/base" + std::to_string(base) +
                               "_added" + std::to_string(added);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [routers, base, added](benchmark::State& state) {
            scaleCase(state, routers, base, added);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
