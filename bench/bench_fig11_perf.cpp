// Figure 11: "Performance on reachability policy".
//
//  11a: update-computation time vs network size, AED vs CPR, on datacenter
//       networks. Paper shape: comparable for <=10 routers; CPR's graph
//       model pulls ahead as networks grow, but AED stays in the same
//       order of magnitude despite far greater objective coverage.
//  11b: time vs topology-zoo network size, AED vs NetComplete-like
//       clean-slate synthesis. Paper shape: AED wins by 10-100x; the gap
//       widens with size (the paper stopped NetComplete runs after 30+
//       hours at moderate scale, which is why the clean-slate cases here
//       are capped).
//
// Counters report both wall-clock seconds and, for AED, the critical-path
// seconds a multi-core machine would see (this host is single-core, so the
// per-destination subproblems run back to back).
//
// Run: ./build/bench/bench_fig11_perf

#include "baselines/cpr.hpp"
#include "baselines/netcomplete.hpp"
#include "common.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

void dcCase(benchmark::State& state, int routers, const std::string& tool) {
  const GeneratedNetwork net = generateDatacenter(dcPreset(routers, 7));
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 4, 107);
  const PolicySet all = concat(update);
  for (auto _ : state) {
    if (tool == "cpr") {
      CprResult r = cprRepair(net.tree, all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      state.counters["toolSeconds"] = r.seconds;
      requireCorrect(r.updated, all, state);
    } else {
      AedResult r = synthesize(net.tree, all, objectivesMinDevices());
      if (!r.success) return state.SkipWithError(r.error.c_str());
      state.counters["toolSeconds"] = r.stats.totalSeconds;
      state.counters["criticalPathSeconds"] = r.stats.maxSubproblemSeconds;
      state.counters["subproblems"] =
          static_cast<double>(r.stats.subproblems);
      requireCorrect(r.updated, all, state);
    }
  }
}

void zooCase(benchmark::State& state, int routers, const std::string& tool) {
  ZooParams params;
  params.routers = routers;
  params.seed = 5;
  const GeneratedNetwork net = generateZoo(params);
  // The paper's setup: 8 base + 8 added reachability policies.
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 8, 205, 8);
  const PolicySet all = concat(update);
  for (auto _ : state) {
    if (tool == "netcomplete") {
      AedResult r = netCompleteSynthesize(net.tree, all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      state.counters["toolSeconds"] = r.stats.totalSeconds;
      requireCorrect(r.updated, all, state);
    } else {
      AedResult r = synthesize(net.tree, all, objectivesMinDevices());
      if (!r.success) return state.SkipWithError(r.error.c_str());
      state.counters["toolSeconds"] = r.stats.totalSeconds;
      state.counters["criticalPathSeconds"] = r.stats.maxSubproblemSeconds;
      requireCorrect(r.updated, all, state);
    }
  }
}

void registerCases() {
  std::vector<int> dcSizes = {4, 8, 16};
  std::vector<int> zooSizes = {16, 24, 32};
  int netCompleteCap = 24;
  if (aedbench::fullScale()) {
    dcSizes = {4, 8, 12, 16, 20, 24};
    zooSizes = {30, 50, 70, 100, 130, 160};
    netCompleteCap = 50;
  }
  for (int routers : dcSizes) {
    for (const std::string& tool : {std::string("aed"), std::string("cpr")}) {
      const std::string name =
          "Fig11a/dc" + std::to_string(routers) + "/" + tool;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [routers, tool](benchmark::State& state) {
                                     dcCase(state, routers, tool);
                                   })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  for (int routers : zooSizes) {
    for (const std::string& tool :
         {std::string("aed"), std::string("netcomplete")}) {
      if (tool == "netcomplete" && routers > netCompleteCap) continue;
      const std::string name =
          "Fig11b/zoo" + std::to_string(routers) + "/" + tool;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [routers, tool](benchmark::State& state) {
                                     zooCase(state, routers, tool);
                                   })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
