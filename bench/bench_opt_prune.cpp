// §9.3 "Pruning configuration": the §8 optimization that statically drops
// conditionals (and their delta variables) whose prefixes cannot intersect
// the policies' traffic. Paper: 1.2-1.5x speedup on the datacenter
// networks.
//
// Run: ./build/bench/bench_opt_prune

#include "common.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

void pruneCase(benchmark::State& state, int routers, bool prune) {
  DcParams params = dcPreset(routers, 15);
  params.blockedPairFraction = 0.6;
  params.noiseRules = 24;  // irrelevant bogon rules: the pruning target
  const GeneratedNetwork net = generateDatacenter(params);
  // Only a slice of the reachability matrix is under policy: the filter
  // rules for quarantined sources outside this slice are exactly what the
  // pruning optimization drops.
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 3, 215, 10);
  const PolicySet all = concat(update);

  // The paper evaluates each optimization in isolation (§9.3); run the
  // monolithic solver so the per-destination scoping doesn't subsume the
  // pruning.
  AedOptions options;
  options.perDestination = false;
  options.sketch.pruneIrrelevant = prune;
  for (auto _ : state) {
    const AedResult r =
        synthesize(net.tree, all, objectivesMinDevices(), options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    state.counters["deltaCount"] = static_cast<double>(r.stats.deltaCount);
    requireCorrect(r.updated, all, state);
  }
}

void registerCases() {
  std::vector<int> sizes = {8, 12};
  if (aedbench::fullScale()) sizes = {8, 12, 16};
  for (int routers : sizes) {
    for (const bool prune : {true, false}) {
      const std::string name = "OptPrune/dc" + std::to_string(routers) +
                               (prune ? "/pruned" : "/unpruned");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [routers, prune](benchmark::State& state) {
            pruneCase(state, routers, prune);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
