// Shared helpers for the evaluation benches.
//
// Every bench binary regenerates one table/figure of the paper's §9. The
// default scale is sized so the whole bench suite completes in tens of
// minutes on a small machine; setting AED_BENCH_FULL=1 switches to the
// paper's own scale (topology-zoo sizes 30-160, policy bases up to 256).
// EXPERIMENTS.md records the mapping and the measured numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "conftree/diff.hpp"
#include "core/aed.hpp"
#include "gen/netgen.hpp"
#include "gen/policygen.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "simulate/simulator.hpp"

namespace aedbench {

inline bool fullScale() {
  const char* env = std::getenv("AED_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Span-trace artifact hook for bench binaries: declare one at the top of
/// main(). When AED_TRACE_OUT names a file, tracing is enabled for the whole
/// bench run and the Chrome trace-event JSON is written there on exit (CI
/// uploads these next to the BENCH_*.json result files). Without the env
/// var, tracing stays disabled and the benches measure the zero-cost path.
/// AED_METRICS_OUT names a second artifact: the registry snapshot, exported
/// on exit as JSON (path ends in ".json") or Prometheus text.
struct TraceArtifact {
  std::string path;
  std::string metricsPath;
  TraceArtifact() {
    if (const char* env = std::getenv("AED_TRACE_OUT");
        env != nullptr && env[0] != '\0') {
      path = env;
      aed::Tracer::enable();
    }
    if (const char* env = std::getenv("AED_METRICS_OUT");
        env != nullptr && env[0] != '\0') {
      metricsPath = env;
    }
  }
  ~TraceArtifact() {
    if (!path.empty()) {
      if (aed::Tracer::writeChromeTrace(path)) {
        std::fprintf(stderr, "trace written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write trace file: %s\n", path.c_str());
      }
    }
    if (!metricsPath.empty()) {
      if (aed::exportMetricsFile(metricsPath)) {
        std::fprintf(stderr, "metrics snapshot written to %s\n",
                     metricsPath.c_str());
      } else {
        std::fprintf(stderr, "cannot write metrics file: %s\n",
                     metricsPath.c_str());
      }
    }
  }
};

/// Datacenter preset: turns a target router count into a leaf-spine shape
/// mirroring the paper's 2-24 router datacenter networks.
inline aed::DcParams dcPreset(int routers, std::uint64_t seed) {
  aed::DcParams params;
  if (routers <= 2) {
    params.racks = 2;
    params.aggs = 0;
    params.spines = 0;
  } else {
    params.aggs = std::max(1, routers / 4);
    params.spines = routers >= 8 ? std::max(1, routers / 8) : 0;
    params.racks = routers - params.aggs - params.spines;
  }
  params.blockedPairFraction = 0.4;
  params.seed = seed;
  return params;
}

inline aed::PolicySet concat(const aed::PolicyUpdate& update) {
  aed::PolicySet all = update.base;
  all.insert(all.end(), update.added.begin(), update.added.end());
  return all;
}

/// Standard counters for change metrics.
inline void reportChurn(benchmark::State& state, const aed::ConfigTree& before,
                        const aed::ConfigTree& after) {
  const aed::DiffStats diff = aed::diffNetworks(before, after);
  state.counters["devicesPct"] = diff.devicesChangedPct();
  state.counters["linesPct"] = diff.linesChangedPct();
  state.counters["devices"] = diff.devicesChanged;
  state.counters["lines"] = diff.linesChanged();
}

/// Asserts (at bench time) that every policy holds after an update; a bench
/// that silently measured a broken update would be meaningless.
inline void requireCorrect(const aed::ConfigTree& updated,
                           const aed::PolicySet& policies,
                           benchmark::State& state) {
  aed::Simulator sim(updated);
  if (!sim.violations(policies).empty()) {
    state.SkipWithError("update failed validation");
  }
}

}  // namespace aedbench
