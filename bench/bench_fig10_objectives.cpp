// Figure 10: "Other management objectives".
//
//  10a (min-pfs): when adding blocking policies, how many packet filters
//      does each tool end up adding? The paper: AED (with the min-pfs
//      objective) never adds more than 2 filters per network; CPR adds up
//      to 3x as many.
//  10b (preserve-templates): percentage of configuration templates violated
//      by each tool's update. The paper: AED 0%, CPR worst, NetComplete up
//      to 25%.
//
// Run: ./build/bench/bench_fig10_objectives

#include "baselines/cpr.hpp"
#include "baselines/netcomplete.hpp"
#include "common.hpp"
#include "util/rng.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

// ---- 10a: min-pfs ----------------------------------------------------------
// Workload: a zoo network with NO filters yet; the update adds blocking
// policies, so every tool must introduce packet filtering somewhere.

struct BlockingWorkload {
  GeneratedNetwork net;
  PolicySet all;
};

BlockingWorkload blockingWorkload(int routers, int blockCount,
                                  std::uint64_t seed) {
  BlockingWorkload w;
  ZooParams params;
  params.routers = routers;
  params.blockedPairFraction = 0.0;  // start with no filters at all
  params.seed = seed;
  w.net = generateZoo(params);

  // Turn `blockCount` currently-reachable pairs into blocking policies and
  // keep a sample of reachability policies as regression guards.
  Simulator sim(w.net.tree);
  PolicySet inferred = sim.inferReachabilityPolicies();
  Rng rng(seed + 1);
  for (std::size_t i = inferred.size(); i > 1; --i) {
    std::swap(inferred[i - 1], inferred[rng.index(i)]);
  }
  int blocks = 0;
  int keeps = 0;
  for (const Policy& policy : inferred) {
    if (policy.kind != PolicyKind::kReachability) continue;
    if (blocks < blockCount) {
      w.all.push_back(Policy::blocking(policy.cls));
      ++blocks;
    } else if (keeps < 24) {
      w.all.push_back(policy);
      ++keeps;
    }
  }
  return w;
}

void minPfs(benchmark::State& state, int routers, const std::string& tool) {
  const BlockingWorkload w = blockingWorkload(routers, 4, 11);
  for (auto _ : state) {
    ConfigTree updated;
    if (tool == "cpr") {
      CprResult r = cprRepair(w.net.tree, w.all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else {
      AedResult r =
          synthesize(w.net.tree, w.all, objectivesMinPacketFilters());
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    }
    requireCorrect(updated, w.all, state);
    state.counters["pfAdded"] = packetFiltersAdded(w.net.tree, updated);
    state.counters["pfRulesAdded"] =
        packetFilterRulesAdded(w.net.tree, updated);
  }
}

// ---- 10b: preserve-templates ----------------------------------------------

void preserveTemplates(benchmark::State& state, int routers,
                       const std::string& tool) {
  const GeneratedNetwork net = generateDatacenter(dcPreset(routers, 5));
  const PolicyUpdate update = makeReachabilityUpdate(net.tree, 4, 105);
  const PolicySet all = concat(update);
  const TemplateGroups groups = computeTemplateGroups(net.tree);
  for (auto _ : state) {
    ConfigTree updated;
    if (tool == "cpr") {
      CprResult r = cprRepair(net.tree, all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else if (tool == "netcomplete") {
      AedResult r = netCompleteSynthesize(net.tree, all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else {
      AedResult r = synthesize(net.tree, all, objectivesPreserveTemplates());
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    }
    requireCorrect(updated, all, state);
    state.counters["templViolationPct"] =
        templateViolationPct(groups, updated);
    state.counters["templates"] = static_cast<double>(groups.groups.size());
  }
}

void registerCases() {
  std::vector<int> pfsSizes = {12, 16};
  std::vector<int> templSizes = {8, 16};
  if (aedbench::fullScale()) {
    pfsSizes = {16, 24, 32};
    templSizes = {8, 16, 24};
  }
  for (int routers : pfsSizes) {
    for (const std::string& tool : {std::string("aed"), std::string("cpr")}) {
      const std::string name =
          "Fig10a_minpfs/zoo" + std::to_string(routers) + "/" + tool;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [routers, tool](benchmark::State& state) {
            minPfs(state, routers, tool);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  for (int routers : templSizes) {
    for (const std::string& tool :
         {std::string("aed"), std::string("cpr"), std::string("netcomplete")}) {
      const std::string name =
          "Fig10b_templates/dc" + std::to_string(routers) + "/" + tool;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [routers, tool](benchmark::State& state) {
            preserveTemplates(state, routers, tool);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
