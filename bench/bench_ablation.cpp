// Ablations of this implementation's own design choices (DESIGN.md §5),
// beyond the paper's three §8 optimizations:
//
//  * default per-delta minimality — without it the solver returns arbitrary
//    policy-compliant assignments (this is most of what separates AED from
//    the clean-slate baseline);
//  * simulator validation + repair loop — the safety net for model/solver
//    divergence; measures its overhead on the happy path;
//  * destination-scoped decomposition — per-destination solving without the
//    scoping restriction would be unsound (see DESIGN.md), so the ablation
//    contrasts scoped-parallel vs monolithic *churn* (optimality cost of
//    scoping).
//
// Run: ./build/bench/bench_ablation

#include "common.hpp"
#include "conftree/diff.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::requireCorrect;

struct Workload {
  GeneratedNetwork net;
  PolicySet all;
};

Workload makeWorkload(int routers) {
  Workload w;
  w.net = generateDatacenter(dcPreset(routers, 21));
  const PolicyUpdate update = makeReachabilityUpdate(w.net.tree, 4, 321, 24);
  w.all = concat(update);
  return w;
}

void minimalityAblation(benchmark::State& state, int routers, bool on) {
  const Workload w = makeWorkload(routers);
  AedOptions options;
  options.defaultMinimality = on;
  for (auto _ : state) {
    const AedResult r = synthesize(w.net.tree, w.all, {}, options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    requireCorrect(r.updated, w.all, state);
    const DiffStats diff = diffNetworks(w.net.tree, r.updated);
    state.counters["lines"] = diff.linesChanged();
    state.counters["devices"] = diff.devicesChanged;
    state.counters["toolSeconds"] = r.stats.totalSeconds;
  }
}

void validationAblation(benchmark::State& state, int routers, bool on) {
  const Workload w = makeWorkload(routers);
  AedOptions options;
  options.validateWithSimulator = on;
  for (auto _ : state) {
    const AedResult r = synthesize(w.net.tree, w.all, {}, options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    requireCorrect(r.updated, w.all, state);
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    state.counters["repairRounds"] =
        static_cast<double>(r.stats.repairRounds);
  }
}

void scopingAblation(benchmark::State& state, int routers, bool scoped) {
  const Workload w = makeWorkload(routers);
  AedOptions options;
  options.perDestination = scoped;  // unscoped == monolithic global optimum
  for (auto _ : state) {
    const AedResult r =
        synthesize(w.net.tree, w.all, objectivesMinDevices(), options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    requireCorrect(r.updated, w.all, state);
    const DiffStats diff = diffNetworks(w.net.tree, r.updated);
    state.counters["devices"] = diff.devicesChanged;
    state.counters["lines"] = diff.linesChanged();
    state.counters["toolSeconds"] = r.stats.totalSeconds;
  }
}

void registerCases() {
  const int routers = aedbench::fullScale() ? 12 : 8;
  for (const bool on : {true, false}) {
    benchmark::RegisterBenchmark(
        (std::string("Ablation/minimality/") + (on ? "on" : "off")).c_str(),
        [routers, on](benchmark::State& s) {
          minimalityAblation(s, routers, on);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("Ablation/validation/") + (on ? "on" : "off")).c_str(),
        [routers, on](benchmark::State& s) {
          validationAblation(s, routers, on);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string("Ablation/decomposition/") +
         (on ? "scoped-parallel" : "monolithic"))
            .c_str(),
        [routers, on](benchmark::State& s) {
          scopingAblation(s, routers, on);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
