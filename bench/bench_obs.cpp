// Overhead budget of the observability layer (DESIGN.md §10, §12).
//
// The tracer rides inside every hot loop of the engine, so its disabled-mode
// cost is a correctness property, not a nicety: spanDisabled asserts (at
// bench time) that a fully inert span — tracer off AND flight recorder off —
// costs well under the §10 budget of 250 ns (two relaxed atomic loads in
// practice), histogramRecord asserts the §12 histogram-record budget of
// 100 ns, and spanFlight/spanEnabled/traceExport keep the recording and
// export costs inspectable per run. A regression here would silently tax
// every phase the evaluation figures measure.
//
// Like the other benches, AED_TRACE_OUT=<file> makes the binary itself emit
// a Chrome trace artifact, and AED_METRICS_OUT=<file> a metrics snapshot.

#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>
#include <string_view>

#include "common.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using aed::FlightRecorder;
using aed::MetricsRegistry;
using aed::Span;
using aed::Tracer;

constexpr double kDisabledBudgetNs = 250.0;
constexpr double kHistogramBudgetNs = 100.0;

/// Create/destroy one span with tracing AND the flight recorder disabled.
/// This is the §10 inert fast path; the flight recorder defaults on, so the
/// bench disables it explicitly (its always-on cost is spanFlight below).
void spanDisabled(benchmark::State& state) {
  Tracer::disable();
  FlightRecorder::setEnabled(false);
  for (auto _ : state) {
    AED_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());

  // Re-measure outside the benchmark loop for the assertion so gbench
  // timer overhead does not count against the budget.
  constexpr int kProbe = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbe; ++i) {
    AED_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    kProbe;
  FlightRecorder::setEnabled(true);
  state.counters["disabledNsPerSpan"] = ns;
  if (ns > kDisabledBudgetNs) {
    state.SkipWithError("disabled span exceeds the overhead budget");
  }
}

/// Create/destroy one span with only the flight recorder on (the production
/// default): two clock reads plus a bounded copy into the thread's ring.
void spanFlight(benchmark::State& state) {
  Tracer::disable();
  FlightRecorder::setEnabled(true);
  for (auto _ : state) {
    AED_SPAN("bench.flight");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  FlightRecorder::clear();
}

/// Histogram record through a cached handle (the per-SMT-check cost).
/// Asserts the §12 budget: three relaxed atomic RMWs, no locks.
void histogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  const MetricsRegistry::Histogram hist = registry.histogram("bench.hist");
  double value = 1e-6;
  for (auto _ : state) {
    hist.record(value);
    value += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());

  constexpr int kProbe = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbe; ++i) {
    hist.record(3.5e-3);
    benchmark::ClobberMemory();
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    kProbe;
  state.counters["recordNsPerSample"] = ns;
  if (ns > kHistogramBudgetNs) {
    state.SkipWithError("histogram record exceeds the overhead budget");
  }
}

/// Create/destroy one recorded span (tracing enabled).
void spanEnabled(benchmark::State& state) {
  Tracer::clear();
  Tracer::enable();
  for (auto _ : state) {
    AED_SPAN("bench.enabled");
    benchmark::ClobberMemory();
  }
  Tracer::disable();
  state.SetItemsProcessed(state.iterations());
  Tracer::clear();
}

/// Export cost: 10k spans through the Chrome-JSON writer.
void traceExport(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Tracer::clear();
    Tracer::enable();
    for (int i = 0; i < 10'000; ++i) {
      Span span("bench.export");
    }
    Tracer::disable();
    state.ResumeTiming();
    std::ostringstream out;
    Tracer::writeChromeTrace(out);
    benchmark::DoNotOptimize(out.str().size());
  }
  Tracer::clear();
}

/// Counter mutation through a cached handle (the worker-visible cost).
void metricAdd(benchmark::State& state) {
  MetricsRegistry registry;
  const MetricsRegistry::Metric metric = registry.counter("bench.counter");
  for (auto _ : state) {
    metric.add(1.0);
  }
  state.SetItemsProcessed(state.iterations());
}

/// End-to-end sanity: a small synthesize with tracing enabled produces a
/// span tree whose root covers the run. Keeps the integration cost visible;
/// the <5% disabled-mode budget on bench_incremental is asserted by the
/// microbench above (the e2e number is too Z3-noisy for a hard gate).
void synthesizeTraced(benchmark::State& state) {
  const aed::GeneratedNetwork net =
      aed::generateDatacenter(aedbench::dcPreset(8, 42));
  const aed::PolicyUpdate update =
      aed::makeReachabilityUpdate(net.tree, 2, 43);
  const aed::PolicySet policies = aedbench::concat(update);
  for (auto _ : state) {
    Tracer::clear();
    Tracer::enable();
    const aed::AedResult result = aed::synthesize(net.tree, policies);
    Tracer::disable();
    if (!result.success) {
      state.SkipWithError("synthesis failed");
      break;
    }
    const auto events = Tracer::collect();
    bool sawRoot = false;
    for (const auto& event : events) {
      if (std::string_view(event.name) == "aed.synthesize") sawRoot = true;
    }
    if (!sawRoot) {
      state.SkipWithError("no aed.synthesize span recorded");
      break;
    }
    state.counters["spans"] = static_cast<double>(events.size());
  }
  Tracer::clear();
}

void registerCases() {
  benchmark::RegisterBenchmark("obs/spanDisabled", spanDisabled);
  benchmark::RegisterBenchmark("obs/spanFlight", spanFlight);
  benchmark::RegisterBenchmark("obs/histogramRecord", histogramRecord);
  benchmark::RegisterBenchmark("obs/spanEnabled", spanEnabled);
  benchmark::RegisterBenchmark("obs/traceExport", traceExport)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("obs/metricAdd", metricAdd);
  benchmark::RegisterBenchmark("obs/synthesizeTraced", synthesizeTraced)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  const aedbench::TraceArtifact trace;  // AED_TRACE_OUT=<file> to record
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
