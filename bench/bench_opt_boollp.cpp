// §9.3 "Using boolean variables": the (2n+1) boolean local-preference
// encoding vs raw integer deltas.
//
// The paper's setup uses path-preference policies that can only be
// satisfied by changing local preferences (they set a higher lp on the
// wrong path so the policy forces an lp update). We scale that idea to a
// ladder: source S reaches T over k parallel two-hop paths, each import at
// S carrying a distinct configured lp, and the policies demand that the
// currently *least* preferred paths become primary. With n distinct lp
// values configured, the boolean encoding searches (2n+1) rank slots per
// change; the integer encoding searches a bounded-but-huge integer range.
//
// Run: ./build/bench/bench_opt_boollp

#include <string>

#include "common.hpp"
#include "conftree/parser.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::requireCorrect;

// Builds the ladder: S --(mid_i)-- T for i in [0,k), one host subnet on S
// and `dsts` host subnets on T. S's import from mid_i is filtered with
// lp = 100 + 10*i.
std::string ladderConfig(int k, int dsts) {
  std::string s;
  // Router S.
  s += "hostname S\ninterface hosts\n ip address 1.0.0.1/16\n";
  for (int i = 0; i < k; ++i) {
    s += "interface to_m" + std::to_string(i) + "\n ip address 10.0." +
         std::to_string(i) + ".1/30\n";
  }
  s += "router bgp 65000\n";
  for (int i = 0; i < k; ++i) {
    s += " neighbor 10.0." + std::to_string(i) + ".2 remote-router m" +
         std::to_string(i) + " filter-in rf_m" + std::to_string(i) + "\n";
  }
  s += " network 1.0.0.0/16\n";
  for (int i = 0; i < k; ++i) {
    s += " route-filter rf_m" + std::to_string(i) +
         " seq 10 permit any set local-preference " +
         std::to_string(100 + 10 * i) + "\n";
  }
  // Middle routers.
  for (int i = 0; i < k; ++i) {
    const std::string m = std::to_string(i);
    s += "hostname m" + m + "\n";
    s += "interface to_S\n ip address 10.0." + m + ".2/30\n";
    s += "interface to_T\n ip address 10.1." + m + ".1/30\n";
    s += "router bgp 6510" + m + "\n";
    s += " neighbor 10.0." + m + ".1 remote-router S\n";
    s += " neighbor 10.1." + m + ".2 remote-router T\n";
  }
  // Router T with `dsts` host subnets.
  s += "hostname T\n";
  for (int d = 0; d < dsts; ++d) {
    s += "interface hosts" + std::to_string(d) + "\n ip address 2." +
         std::to_string(d) + ".0.1/16\n";
  }
  for (int i = 0; i < k; ++i) {
    s += "interface to_m" + std::to_string(i) + "\n ip address 10.1." +
         std::to_string(i) + ".2/30\n";
  }
  s += "router bgp 65999\n";
  for (int i = 0; i < k; ++i) {
    s += " neighbor 10.1." + std::to_string(i) + ".1 remote-router m" +
         std::to_string(i) + "\n";
  }
  for (int d = 0; d < dsts; ++d) {
    s += " network 2." + std::to_string(d) + ".0.0/16\n";
  }
  return s;
}

void lpCase(benchmark::State& state, bool booleanLp, int k, int dsts) {
  const ConfigTree tree = parseNetworkConfig(ladderConfig(k, dsts));
  // Currently the highest-lp path (via m_{k-1}) carries everything; demand
  // that destination d prefer the path via m_d (the d-th least preferred),
  // falling back to the path via m_{d+1}.
  PolicySet policies;
  for (int d = 0; d < dsts; ++d) {
    const TrafficClass cls{
        *Ipv4Prefix::parse("1.0.0.0/16"),
        *Ipv4Prefix::parse("2." + std::to_string(d) + ".0.0/16")};
    policies.push_back(Policy::pathPreference(
        cls, {"S", "m" + std::to_string(d), "T"},
        {"S", "m" + std::to_string(d + 1), "T"}));
  }

  AedOptions options;
  options.encoder.booleanLp = booleanLp;
  for (auto _ : state) {
    const AedResult r = synthesize(tree, policies, {}, options);
    if (!r.success) return state.SkipWithError(r.error.c_str());
    state.counters["toolSeconds"] = r.stats.totalSeconds;
    requireCorrect(r.updated, policies, state);
  }
}

void registerCases() {
  const int k = aedbench::fullScale() ? 8 : 6;
  const int dsts = aedbench::fullScale() ? 4 : 3;
  for (const bool booleanLp : {true, false}) {
    const std::string name =
        std::string("OptBoolLp/") + (booleanLp ? "boolean" : "integer") +
        "/k" + std::to_string(k);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [booleanLp, k, dsts](benchmark::State& state) {
          lpCase(state, booleanLp, k, dsts);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
