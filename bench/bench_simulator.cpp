// Memoized simulation engine vs the serial from-scratch Simulator.
//
// Validation is the non-solver half of every repair round: the serial oracle
// re-runs route convergence for every (policy, source) forwarding walk, so a
// policy-heavy validation pays the convergence cost hundreds of times for a
// handful of distinct destinations. The SimulationEngine converges once per
// (destination, environment), shards the checks across a thread pool, and
// across repair rounds invalidates only the destinations the round's patch
// touches. Verdicts are bit-identical (asserted here and in
// tests/engine_test.cpp); this bench measures what that buys.
//
// Cases:
//   Simulator/dcN/violations — one policy-heavy violations() sweep:
//     serialSeconds   — fresh Simulator, convergence per forwarding walk
//     coldSeconds     — SimulationEngine, cold cache (compile + converge)
//     warmSeconds     — same engine, second sweep (pure cache hits)
//     coldSpeedup / warmSpeedup — serial / engine
//     The cold speedup is asserted >= 3x: the algorithmic win is roughly
//     (policies x sources) / destinations, far above 3 on these shapes.
//   Simulator/dcN/repair — full synthesize() with kRejectValidation forcing
//     repair rounds, memoized engine vs fresh-per-round oracle:
//     freshSimulateSeconds / memoSimulateSeconds — repair-round validation
//     simulateSpeedup, plus the engine's cache counters (hitRatePct,
//     invalidatedTables, targetedInvalidations).
//
// Run: ./build/bench/bench_simulator
//   (JSON for CI trend tracking: --benchmark_out=BENCH_simulator.json
//    --benchmark_out_format=json)

#include <chrono>
#include <functional>

#include "common.hpp"
#include "simulate/engine.hpp"

namespace {

using namespace aed;
using aedbench::dcPreset;
using aedbench::requireCorrect;

constexpr int kForcedRejections = 2;

double secondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> policyStrings(const PolicySet& policies) {
  std::vector<std::string> out;
  out.reserve(policies.size());
  for (const Policy& policy : policies) out.push_back(policy.str());
  return out;
}

// Policy-heavy validation workload: the full inferred reachability matrix
// plus waypoint and path-preference policies — many policies, few distinct
// destinations.
PolicySet validationPolicies(const ConfigTree& tree) {
  const Simulator oracle(tree);
  PolicySet policies = oracle.inferReachabilityPolicies();
  const PolicySet waypoints = makeWaypointPolicies(tree, 8, 5);
  policies.insert(policies.end(), waypoints.begin(), waypoints.end());
  const PolicySet prefs = makePathPreferencePolicies(tree, 4, 5);
  policies.insert(policies.end(), prefs.begin(), prefs.end());
  return policies;
}

void violationsCase(benchmark::State& state, int routers) {
  DcParams params = dcPreset(routers, 17);
  const GeneratedNetwork net = generateDatacenter(params);
  const PolicySet policies = validationPolicies(net.tree);

  for (auto _ : state) {
    PolicySet serialVerdict, coldVerdict, warmVerdict;
    const Simulator oracle(net.tree);
    const double serialSeconds =
        secondsOf([&] { serialVerdict = oracle.violations(policies); });

    const SimulationEngine engine(net.tree);
    const double coldSeconds =
        secondsOf([&] { coldVerdict = engine.violations(policies); });
    const double warmSeconds =
        secondsOf([&] { warmVerdict = engine.violations(policies); });

    if (policyStrings(serialVerdict) != policyStrings(coldVerdict) ||
        policyStrings(serialVerdict) != policyStrings(warmVerdict)) {
      return state.SkipWithError("engine verdicts diverge from the oracle");
    }
    const double coldSpeedup =
        coldSeconds > 0.0 ? serialSeconds / coldSeconds : 0.0;
    if (coldSpeedup < 3.0) {
      return state.SkipWithError("memoized engine below 3x over serial");
    }
    state.counters["policies"] = static_cast<double>(policies.size());
    state.counters["serialSeconds"] = serialSeconds;
    state.counters["coldSeconds"] = coldSeconds;
    state.counters["warmSeconds"] = warmSeconds;
    state.counters["coldSpeedup"] = coldSpeedup;
    state.counters["warmSpeedup"] =
        warmSeconds > 0.0 ? serialSeconds / warmSeconds : 0.0;
    state.counters["hitRatePct"] = engine.cacheStats().hitRate() * 100.0;
  }
}

// Repair-heavy synthesis scenario (same shape as bench_incremental): two
// withdrawn rack subnets plus kRejectValidation forcing full repair rounds.
struct Scenario {
  GeneratedNetwork net;
  PolicySet policies;
};

Scenario repairHeavyScenario(int routers) {
  DcParams params = dcPreset(routers, 29);
  params.blockedPairFraction = 0.0;
  Scenario scenario{generateDatacenter(params), {}};
  scenario.policies = makeWithdrawnSubnetUpdate(scenario.net, "rack0");
  makeWithdrawnSubnetUpdate(scenario.net, "rack1");
  return scenario;
}

AedOptions repairOptions(bool memoized) {
  AedOptions options;
  options.memoizedSimulator = memoized;
  options.maxRepairIterations = kForcedRejections + 3;
  options.faultInjection.kind = FaultInjection::Kind::kRejectValidation;
  options.faultInjection.rejectRounds = kForcedRejections;
  return options;
}

void repairCase(benchmark::State& state, int routers) {
  const Scenario scenario = repairHeavyScenario(routers);

  for (auto _ : state) {
    const AedResult fresh = synthesize(scenario.net.tree, scenario.policies,
                                       {}, repairOptions(false));
    const AedResult memo = synthesize(scenario.net.tree, scenario.policies, {},
                                      repairOptions(true));
    if (!fresh.success) return state.SkipWithError(fresh.error.c_str());
    if (!memo.success) return state.SkipWithError(memo.error.c_str());
    if (memo.stats.repairRounds < kForcedRejections) {
      return state.SkipWithError("scenario was not repair-heavy");
    }
    requireCorrect(fresh.updated, scenario.policies, state);
    requireCorrect(memo.updated, scenario.policies, state);

    const double freshRepairSim = fresh.stats.repair.simulateSeconds;
    const double memoRepairSim = memo.stats.repair.simulateSeconds;
    state.counters["repairRounds"] =
        static_cast<double>(memo.stats.repairRounds);
    state.counters["freshFirstSimulateSeconds"] =
        fresh.stats.firstRound.simulateSeconds;
    state.counters["memoFirstSimulateSeconds"] =
        memo.stats.firstRound.simulateSeconds;
    state.counters["freshSimulateSeconds"] = freshRepairSim;
    state.counters["memoSimulateSeconds"] = memoRepairSim;
    state.counters["simulateSpeedup"] =
        memoRepairSim > 0.0 ? freshRepairSim / memoRepairSim : 0.0;
    state.counters["hitRatePct"] = memo.stats.simulate.hitRate() * 100.0;
    state.counters["invalidatedTables"] =
        static_cast<double>(memo.stats.simulate.invalidatedEntries);
    state.counters["targetedInvalidations"] =
        static_cast<double>(memo.stats.simulate.targetedInvalidations);
    state.counters["fullInvalidations"] =
        static_cast<double>(memo.stats.simulate.fullInvalidations);
  }
}

void registerCases() {
  std::vector<int> sizes = {8, 16};
  if (aedbench::fullScale()) sizes = {8, 16, 24};
  for (int routers : sizes) {
    const std::string base = "Simulator/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(
        (base + "/violations").c_str(),
        [routers](benchmark::State& state) { violationsCase(state, routers); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  std::vector<int> repairSizes = {8};
  if (aedbench::fullScale()) repairSizes = {8, 12};
  for (int routers : repairSizes) {
    const std::string base = "Simulator/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(
        (base + "/repair").c_str(),
        [routers](benchmark::State& state) { repairCase(state, routers); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const aedbench::TraceArtifact trace;  // AED_TRACE_OUT=<file> to record
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
