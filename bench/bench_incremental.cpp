// Incremental re-solve engine vs fresh-per-round rebuilding.
//
// The repair loop is AED's counterexample-guided core: when a candidate
// patch fails simulator validation, the offending delta combination is
// blocked and the affected subproblems re-solved. This bench measures what
// keeping the per-destination solvers alive across rounds (sketch, Z3
// session, encoding reused; only the new blocking clauses pushed) buys over
// rebuilding every subproblem from scratch each round.
//
// A repair-heavy scenario is forced deterministically: two rack subnets'
// originations are withdrawn (each restorable several distinct ways, so
// blocking a candidate delta set leaves alternatives), and
// FaultInjection::kRejectValidation rejects the first N otherwise-passing
// verdicts, so N full blocking + re-solve rounds run for real. Both modes
// must converge to a simulator-validated patch (identical policy-compliance
// verdicts); the bench asserts that.
//
// Counters (per mode):
//   repairRounds       — forced + organic repair rounds taken
//   firstRoundSeconds  — sketch+encode+solve+extract+simulate, round 0
//   repairSeconds      — same, summed over all repair rounds
//   repairSolveSeconds — pure solver time within the repair rounds
// and for the head-to-head case:
//   repairSpeedup      — fresh repairSeconds / incremental repairSeconds
//
// Run: ./build/bench/bench_incremental
//   (JSON for CI trend tracking: --benchmark_out=BENCH_incremental.json
//    --benchmark_out_format=json)

#include "common.hpp"

namespace {

using namespace aed;
using aedbench::dcPreset;
using aedbench::requireCorrect;

constexpr int kForcedRejections = 2;

struct Scenario {
  GeneratedNetwork net;
  PolicySet policies;
};

Scenario repairHeavyScenario(int routers) {
  DcParams params = dcPreset(routers, 29);
  params.blockedPairFraction = 0.0;
  Scenario scenario{generateDatacenter(params), {}};
  // The first call infers the healthy network's full policy set; the second
  // withdrawal only mutates the configuration further (its return value is
  // the already-broken network's policies, which we don't want).
  scenario.policies = makeWithdrawnSubnetUpdate(scenario.net, "rack0");
  makeWithdrawnSubnetUpdate(scenario.net, "rack1");
  return scenario;
}

AedOptions repairHeavyOptions(bool incremental) {
  AedOptions options;
  options.incrementalResolve = incremental;
  options.maxRepairIterations = kForcedRejections + 3;
  options.faultInjection.kind = FaultInjection::Kind::kRejectValidation;
  options.faultInjection.rejectRounds = kForcedRejections;
  return options;
}

void setCounters(benchmark::State& state, const AedResult& r) {
  state.counters["repairRounds"] = static_cast<double>(r.stats.repairRounds);
  state.counters["firstRoundSeconds"] = r.stats.firstRound.total();
  state.counters["repairSeconds"] = r.stats.repair.total();
  state.counters["repairSolveSeconds"] = r.stats.repair.solveSeconds;
  state.counters["repairEncodeSeconds"] = r.stats.repair.encodeSeconds;
  state.counters["warmStartSolves"] =
      static_cast<double>(r.stats.warmStartSolves);
}

void repairHeavyCase(benchmark::State& state, int routers, bool incremental) {
  const Scenario scenario = repairHeavyScenario(routers);

  for (auto _ : state) {
    const AedResult r = synthesize(scenario.net.tree, scenario.policies, {},
                                   repairHeavyOptions(incremental));
    if (!r.success) return state.SkipWithError(r.error.c_str());
    if (r.stats.repairRounds < kForcedRejections) {
      return state.SkipWithError("scenario was not repair-heavy");
    }
    requireCorrect(r.updated, scenario.policies, state);
    setCounters(state, r);
  }
}

// Head-to-head in one iteration so the ratio lands in a single JSON entry.
void speedupCase(benchmark::State& state, int routers) {
  const Scenario scenario = repairHeavyScenario(routers);

  for (auto _ : state) {
    const AedResult fresh = synthesize(scenario.net.tree, scenario.policies,
                                       {}, repairHeavyOptions(false));
    const AedResult incremental = synthesize(
        scenario.net.tree, scenario.policies, {}, repairHeavyOptions(true));
    if (!fresh.success) return state.SkipWithError(fresh.error.c_str());
    if (!incremental.success) {
      return state.SkipWithError(incremental.error.c_str());
    }
    // Identical policy-compliance verdicts: both patches must leave zero
    // violated policies in the concrete simulator.
    requireCorrect(fresh.updated, scenario.policies, state);
    requireCorrect(incremental.updated, scenario.policies, state);

    const double freshRepair = fresh.stats.repair.total();
    const double incrementalRepair = incremental.stats.repair.total();
    state.counters["freshRepairSeconds"] = freshRepair;
    state.counters["incrementalRepairSeconds"] = incrementalRepair;
    state.counters["repairSpeedup"] =
        incrementalRepair > 0.0 ? freshRepair / incrementalRepair : 0.0;
    state.counters["repairRounds"] =
        static_cast<double>(incremental.stats.repairRounds);
  }
}

void registerCases() {
  std::vector<int> sizes = {4, 8};
  if (aedbench::fullScale()) sizes = {4, 8, 12, 16};
  for (int routers : sizes) {
    const std::string base = "Incremental/dc" + std::to_string(routers);
    benchmark::RegisterBenchmark(
        (base + "/freshPerRound").c_str(),
        [routers](benchmark::State& state) {
          repairHeavyCase(state, routers, false);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (base + "/incremental").c_str(),
        [routers](benchmark::State& state) {
          repairHeavyCase(state, routers, true);
        })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (base + "/speedup").c_str(),
        [routers](benchmark::State& state) { speedupCase(state, routers); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const aedbench::TraceArtifact trace;  // AED_TRACE_OUT=<file> to record
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
