// Figure 9: "Minimize devices and lines changed".
//
// The paper compares the percentage of devices (9a) and configuration lines
// (9b) changed by: operators' manual updates, CPR, NetComplete (all
// constructs symbolic), and AED under the min-devices / min-lines
// objectives, on datacenter networks and topology-zoo networks.
//
// Expected shape (paper): NetComplete touches almost every device; manual
// updates touch a role's worth of devices; CPR and AED touch the fewest
// (AED <= 30% of devices on average).
//
// Each benchmark case is one (network, approach) cell; counters report the
// devices/lines percentages. Run: ./build/bench/bench_fig9_churn

#include "baselines/cpr.hpp"
#include "baselines/netcomplete.hpp"
#include "common.hpp"
#include "gen/manual.hpp"
#include "objectives/objective.hpp"

namespace {

using namespace aed;
using aedbench::concat;
using aedbench::dcPreset;
using aedbench::reportChurn;
using aedbench::requireCorrect;

struct Workload {
  GeneratedNetwork net;
  PolicyUpdate update;
  PolicySet all;
};

Workload dcWorkload(int routers, std::uint64_t seed) {
  Workload w;
  w.net = generateDatacenter(dcPreset(routers, seed));
  w.update = makeReachabilityUpdate(w.net.tree, 4, seed + 100);
  w.all = concat(w.update);
  return w;
}

Workload zooWorkload(int routers, std::uint64_t seed) {
  Workload w;
  ZooParams params;
  params.routers = routers;
  params.seed = seed;
  w.net = generateZoo(params);
  w.update = makeReachabilityUpdate(w.net.tree, 8, seed + 100, 48);
  w.all = concat(w.update);
  return w;
}

Workload makeWorkload(const std::string& family, int routers,
                      std::uint64_t seed) {
  return family == "dc" ? dcWorkload(routers, seed)
                        : zooWorkload(routers, seed);
}

void runApproach(benchmark::State& state, const std::string& family,
                 int routers, const std::string& approach) {
  const Workload w = makeWorkload(family, routers, 3);
  for (auto _ : state) {
    ConfigTree updated;
    if (approach == "manual") {
      ManualUpdateResult r = manualUpdate(w.net.tree, w.all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else if (approach == "cpr") {
      CprResult r = cprRepair(w.net.tree, w.all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else if (approach == "netcomplete") {
      AedResult r = netCompleteSynthesize(w.net.tree, w.all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else if (approach == "aed_min_devices") {
      AedResult r = synthesize(w.net.tree, w.all, objectivesMinDevices());
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    } else {  // aed_min_lines: the default per-delta minimality IS min-lines
      AedResult r = synthesize(w.net.tree, w.all);
      if (!r.success) return state.SkipWithError(r.error.c_str());
      updated = std::move(r.updated);
    }
    requireCorrect(updated, w.all, state);
    reportChurn(state, w.net.tree, updated);
  }
}

void registerCases() {
  struct Net {
    std::string family;
    int routers;
  };
  std::vector<Net> nets = {{"dc", 8}, {"dc", 16}, {"zoo", 16}};
  if (aedbench::fullScale()) {
    nets = {{"dc", 8}, {"dc", 16}, {"dc", 24}, {"zoo", 30}, {"zoo", 50}};
  }
  const std::vector<std::string> approaches = {
      "manual", "cpr", "netcomplete", "aed_min_devices", "aed_min_lines"};
  for (const Net& net : nets) {
    for (const std::string& approach : approaches) {
      // Clean-slate synthesis on large zoo networks is where the paper
      // reports 30+ hour runtimes; keep it to sizes it can finish.
      if (approach == "netcomplete" && net.routers > 16) continue;
      const std::string name = "Fig9/" + net.family +
                               std::to_string(net.routers) + "/" + approach;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [family = net.family, routers = net.routers,
           approach](benchmark::State& state) {
            runApproach(state, family, routers, approach);
          })
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  registerCases();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
